/**
 * @file
 * Differential oracle driver: prove every architecture recovers a
 * correct final state under hostile power schedules. For each
 * architecture it runs a census of where backups commit, generates
 * adversarial crash schedules aimed at those instants (plus brownout
 * storms and window-coverage random schedules), and runs every
 * schedule under the lockstep invariant checker, diffing the
 * recovered final state word-by-word against the golden reference
 * interpreter.
 *
 *     nvmr_diff                         # full campaign (1000/arch)
 *     nvmr_diff --schedules 200         # smaller campaign
 *     nvmr_diff --arch nvmr --seed 7    # one architecture, new program
 *     nvmr_diff --smoke                 # 1 schedule/arch (ctest)
 *     nvmr_diff --replay case.repro     # re-run a saved failure
 *     nvmr_diff --shrink case.repro out.repro   # minimize a failure
 *     nvmr_diff --bug rename_alias      # seeded-bug demo: catch,
 *                                       # shrink, save a .repro
 *     nvmr_diff --jobs 8                # worker count (or NVMR_JOBS)
 *     nvmr_diff --journal d.jrn         # checkpoint; --resume d.jrn
 *
 * Any failure saves a self-contained `.repro` file and prints the
 * one-line replay command; exit status is non-zero (1 for a
 * divergence, 2 for usage errors, 3 for quarantined cells,
 * 128+signal when interrupted -- see docs/operations.md).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/cellio.hh"
#include "campaign/sig.hh"
#include "check/runner.hh"
#include "check/schedule.hh"
#include "check/shrink.hh"
#include "cli.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "isa/assembler.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/randprog.hh"

using namespace nvmr;

namespace
{

struct BaseConfig
{
    PolicyKind policy;
    double farads;
    bool byteLbf = false;
};

/** Per-architecture base platforms (mirrors the fuzzer's grid; the
 *  ideal baseline is only safe under perfect JIT). */
std::vector<BaseConfig>
baseConfigs(ArchKind arch)
{
    if (arch == ArchKind::Ideal)
        return {{PolicyKind::Jit, 0.1}};
    std::vector<BaseConfig> out = {
        {PolicyKind::Jit, 0.1},
        {PolicyKind::Watchdog, 500e-6},
    };
    if (arch == ArchKind::Clank || arch == ArchKind::Nvmr)
        out.push_back({PolicyKind::Watchdog, 500e-6, true});
    return out;
}

CheckCase
makeBaseCase(ArchKind arch, const BaseConfig &bc, uint64_t seed,
             InjectedBug bug)
{
    CheckCase c;
    c.name = std::string(archKindName(arch)) + "-s" +
             std::to_string(seed);
    c.arch = arch;
    c.policy = bc.policy;
    c.farads = bc.farads;
    c.byteLbf = bc.byteLbf;
    c.injectedBug = bug;
    c.traceSeed = 40000 + seed;
    c.programText = makeRandomProgram(seed);
    c.programSeed = seed;
    return c;
}

void
reportFailure(const CheckCase &c, const CheckOutcome &out,
              const std::string &repro_path)
{
    std::printf("\nFAILURE: %s on %s/%s at %g F: %s\n", c.name.c_str(),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads, out.describe().c_str());
    std::fputs(out.detail().c_str(), stdout);
    if (saveRepro(repro_path, c))
        std::printf("repro saved; replay with: nvmr_diff --replay %s\n"
                    "minimize with: nvmr_diff --shrink %s\n",
                    repro_path.c_str(), repro_path.c_str());
    else
        std::printf("could not save %s\n", repro_path.c_str());
}

/** Run every adversarial schedule of one base case. */
bool
runBase(campaign::Campaign &cam, const std::string &tag,
        const CheckCase &base, uint32_t budget, uint64_t gen_seed,
        uint64_t *runs, uint64_t *failures,
        const std::string &repro_path)
{
    // The census is one journaled cell of its own, so a resumed
    // campaign regenerates the schedule list from the journal instead
    // of re-running the mapping pass. A census that cannot complete
    // is a tool-level failure (never journaled); under a watchdog
    // budget it is retried and quarantined like any other cell.
    auto census_cells = cam.runStage(
        tag + "/census", 1,
        [&](const campaign::CellContext &ctx)
            -> std::optional<std::string> {
            CheckCase c = base;
            if (ctx.budgetCycles)
                c.maxCycles = ctx.budgetCycles;
            CensusResult r = runCensus(c);
            if (ctx.budgetCycles && !r.completed)
                throw campaign::CellTimeout{
                    base.name + " census exceeded " +
                    std::to_string(ctx.budgetCycles) + " cycles"};
            if (!r.completed)
                return std::nullopt;
            return campaign::encodeCensus(r);
        });
    if (census_cells[0].status == campaign::CellStatus::Skipped ||
        census_cells[0].status == campaign::CellStatus::Quarantined)
        return true; // interrupted / reported via quarantine list
    if (census_cells[0].status != campaign::CellStatus::Done) {
        std::printf("census run of %s did not complete; treating as "
                    "failure\n",
                    base.name.c_str());
        ++*failures;
        return false;
    }
    CensusResult census;
    fatal_if(!campaign::decodeCensus(census_cells[0].payload, census),
             "corrupt journal payload for ", tag, " census");

    ScheduleGenParams params;
    params.budget = budget;
    params.seed = gen_seed;
    std::vector<CheckCase> schedules =
        makeAdversarialSchedules(base, census, params);

    // Precompute the shared read-only oracle only when a schedule
    // still has to run (a fully-journaled base skips it entirely).
    std::string sched_stage = tag + "/sched";
    bool any_fresh = false;
    for (size_t i = 0; i < schedules.size() && !any_fresh; ++i)
        any_fresh = !cam.cellDone(sched_stage, i);
    OracleResult oracle;
    if (any_fresh)
        oracle = runOracle(assemble(base.name, base.programText));

    // Failure detail rides in this side table; clean cells journal an
    // "ok" marker, failures are never journaled so a resume re-runs
    // and reproduces them. Outcomes are scanned in schedule order so
    // the failure reported (and the run count at that point) is the
    // one a serial campaign would have hit first.
    std::vector<CheckOutcome> outs(schedules.size());
    par::Progress progress("diff:" + base.name, schedules.size());
    auto results = cam.runStage(
        sched_stage, schedules.size(),
        [&](const campaign::CellContext &ctx)
            -> std::optional<std::string> {
            CheckCase c = schedules[ctx.index];
            if (ctx.budgetCycles)
                c.maxCycles = ctx.budgetCycles;
            CheckOutcome out = runChecked(c, &oracle);
            if (ctx.budgetCycles && !out.clean() &&
                !out.run.completed)
                throw campaign::CellTimeout{
                    base.name + " schedule " +
                    std::to_string(ctx.index) + " exceeded " +
                    std::to_string(ctx.budgetCycles) + " cycles"};
            if (!out.clean()) {
                outs[ctx.index] = std::move(out);
                return std::nullopt;
            }
            return std::string("ok");
        },
        &progress);
    progress.finish();
    for (size_t i = 0; i < results.size(); ++i) {
        switch (results[i].status) {
          case campaign::CellStatus::Done:
            ++*runs;
            break;
          case campaign::CellStatus::Quarantined:
            break; // reported at the end of the campaign
          case campaign::CellStatus::Skipped:
            return true; // interrupted; caller checks
          case campaign::CellStatus::Failed:
            ++*runs;
            ++*failures;
            reportFailure(schedules[i], outs[i], repro_path);
            return false;
        }
    }
    return true;
}

int
runCampaign(campaign::Campaign &cam,
            const std::vector<ArchKind> &archs, uint32_t per_arch,
            uint64_t seed, InjectedBug bug, bool smoke,
            const std::string &stats_json)
{
    uint64_t runs = 0;
    uint64_t failures = 0;
    bool clean = true;
    for (ArchKind arch : archs) {
        if (cam.interrupted())
            break;
        auto bases = baseConfigs(arch);
        if (smoke)
            bases.resize(1);
        uint32_t per_base = std::max<uint32_t>(
            1, per_arch / static_cast<uint32_t>(bases.size()));
        uint64_t arch_runs_before = runs;
        for (size_t bi = 0;
             bi < bases.size() && clean && !cam.interrupted(); ++bi) {
            // Give the last base config the budget remainder so the
            // per-architecture total meets the request exactly.
            uint32_t budget = per_base;
            if (bi + 1 == bases.size() &&
                per_base * bases.size() < per_arch)
                budget = per_arch -
                         per_base * (static_cast<uint32_t>(
                                         bases.size()) -
                                     1);
            CheckCase base =
                makeBaseCase(arch, bases[bi], seed, bug);
            std::string tag = std::string(archKindName(arch)) + "-b" +
                              std::to_string(bi);
            clean &= runBase(cam, tag, base, budget, seed * 31 + bi,
                             &runs, &failures,
                             "nvmr_diff_failure.repro");
        }
        if (cam.interrupted())
            break;
        std::printf("%s: %llu schedules, %s\n", archKindName(arch),
                    static_cast<unsigned long long>(
                        runs - arch_runs_before),
                    clean ? "all clean" : "FAILED");
        if (!clean)
            break;
    }
    if (cam.interrupted())
        std::printf("interrupted: %llu checked runs checkpointed\n",
                    static_cast<unsigned long long>(runs));
    else if (clean)
        std::printf("campaign done: %llu checked runs, zero "
                    "divergences, zero invariant violations\n",
                    static_cast<unsigned long long>(runs));
    for (const auto &q : cam.quarantined())
        warn("quarantined ", q.stage, "/", q.index, " after ",
             q.attempts, " attempt(s): ", q.reason);
    int rc = kExitOk;
    if (!stats_json.empty()) {
        ManifestWriter manifest("nvmr_diff");
        manifest.addExtra("runs", static_cast<double>(runs));
        manifest.addExtra("failures",
                          static_cast<double>(failures));
        manifest.addExtra("result",
                          cam.interrupted() ? "interrupted"
                          : clean           ? "clean"
                                            : "divergence");
        manifest.addExtraJson("quarantine", cam.quarantineJson());
        if (!manifest.tryWriteFile(stats_json))
            rc = kExitDegraded;
    }
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
        warn("error writing to stdout");
        rc = kExitDegraded;
    }
    if (!clean)
        rc = kExitMismatch;
    return cam.exitCode(rc);
}

int
replay(const std::string &path)
{
    CheckCase c;
    std::string error;
    if (!loadRepro(path, c, error)) {
        std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    CheckOutcome out = runChecked(c);
    std::printf("%s: %s\n", c.name.c_str(), out.describe().c_str());
    std::fputs(out.detail().c_str(), stdout);
    return out.clean() ? 0 : 1;
}

int
shrink(const std::string &in_path, const std::string &out_path)
{
    CheckCase c;
    std::string error;
    if (!loadRepro(in_path, c, error)) {
        std::fprintf(stderr, "cannot load %s: %s\n", in_path.c_str(),
                     error.c_str());
        return 2;
    }
    ShrinkResult r = shrinkCase(c);
    if (!r.verifiedFailing) {
        std::printf("case is clean; nothing to shrink (%u runs)\n",
                    r.runsUsed);
        return 1;
    }
    if (!saveRepro(out_path, r.minimized)) {
        std::fprintf(stderr, "cannot save %s\n", out_path.c_str());
        return 2;
    }
    size_t crashes = r.minimized.faults.crashPersists.size() +
                     r.minimized.faults.crashCycles.size();
    std::printf("shrunk to %zu crash point(s), %zu program bytes in "
                "%u runs; saved %s\n",
                crashes, r.minimized.programText.size(), r.runsUsed,
                out_path.c_str());
    std::printf("replay with: nvmr_diff --replay %s\n",
                out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    campaign::installSignalHandlers();
    uint32_t per_arch = 1000;
    uint64_t seed = 1;
    InjectedBug bug = InjectedBug::None;
    std::string only_arch;
    std::string stats_json;
    bool smoke = false;
    campaign::Options copts;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", flag);
            return argv[++i];
        };
        if (cli::handleJobsArg(argc, argv, i)) {
        } else if (cli::handleCampaignArg(argc, argv, i, copts)) {
        } else if (std::strcmp(argv[i], "--schedules") == 0) {
            per_arch = static_cast<uint32_t>(
                std::strtoul(need("--schedules"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            seed = std::strtoull(need("--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--arch") == 0) {
            only_arch = need("--arch");
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            stats_json = need("--stats-json");
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            return replay(need("--replay"));
        } else if (std::strcmp(argv[i], "--shrink") == 0) {
            std::string in = need("--shrink");
            std::string out = i + 1 < argc && argv[i + 1][0] != '-'
                                  ? argv[++i]
                                  : in + ".min";
            return shrink(in, out);
        } else if (std::strcmp(argv[i], "--bug") == 0) {
            std::string v = need("--bug");
            if (v == "rename_alias")
                bug = InjectedBug::RenameAlias;
            else if (v == "freelist_leak")
                bug = InjectedBug::FreeListLeak;
            else
                fatal("unknown --bug ", v,
                      " (rename_alias | freelist_leak)");
        } else {
            fatal("unknown argument ", argv[i]);
        }
    }

    std::vector<ArchKind> archs;
    if (!only_arch.empty()) {
        ArchKind k;
        if (!archKindFromName(only_arch, k))
            fatal("unknown architecture ", only_arch);
        archs.push_back(k);
    } else {
        archs = {ArchKind::Nvmr,  ArchKind::Clank,
                 ArchKind::ClankOriginal, ArchKind::Hoop,
                 ArchKind::Task,  ArchKind::Ideal};
    }
    if (bug != InjectedBug::None) {
        // Seeded bugs live in the renaming layer.
        archs = {ArchKind::Nvmr};
    }

    std::string config_spec = "diff|archs=";
    for (size_t i = 0; i < archs.size(); ++i) {
        if (i)
            config_spec += ',';
        config_spec += archKindName(archs[i]);
    }
    config_spec += "|schedules=" +
                   std::to_string(smoke ? 1 : per_arch) +
                   "|seed=" + std::to_string(seed) +
                   "|bug=" + std::to_string(static_cast<int>(bug)) +
                   "|smoke=" + std::to_string(smoke ? 1 : 0);
    cli::appendWatchdogSpec(config_spec, copts);
    campaign::Campaign cam("nvmr_diff", config_spec, copts);

    return runCampaign(cam, archs, smoke ? 1 : per_arch, seed, bug,
                       smoke, stats_json);
}

/**
 * @file
 * Grid-sweep driver with CSV output: run every workload across a
 * grid of architectures, policies and capacitor sizes and emit one
 * CSV row per cell, ready for plotting. This is the generic
 * companion to the fixed per-figure harnesses in bench/.
 *
 *     nvmr_sweep > sweep.csv
 *     nvmr_sweep --traces 3 --archs clank,nvmr --caps 0.1,0.0075
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

ArchKind
parseArch(const std::string &name)
{
    if (name == "ideal")
        return ArchKind::Ideal;
    if (name == "clank")
        return ArchKind::Clank;
    if (name == "clank_original")
        return ArchKind::ClankOriginal;
    if (name == "task")
        return ArchKind::Task;
    if (name == "nvmr")
        return ArchKind::Nvmr;
    if (name == "hoop")
        return ArchKind::Hoop;
    fatal("unknown architecture '", name, "'");
}

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "jit")
        return PolicyKind::Jit;
    if (name == "watchdog")
        return PolicyKind::Watchdog;
    if (name == "none")
        return PolicyKind::None;
    fatal("unknown policy '", name,
          "' (spendthrift needs offline training)");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    int num_traces = 5;
    std::vector<std::string> archs = {"clank", "nvmr", "hoop"};
    std::vector<std::string> policies = {"jit", "watchdog"};
    // "none" is also accepted (task-based runs).
    std::vector<double> caps = {0.1};
    std::vector<std::string> workloads;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--traces") {
            num_traces = std::atoi(need(i));
        } else if (a == "--archs") {
            archs = splitList(need(i));
        } else if (a == "--policies") {
            policies = splitList(need(i));
        } else if (a == "--caps") {
            caps.clear();
            for (const std::string &c : splitList(need(i)))
                caps.push_back(std::strtod(c.c_str(), nullptr));
        } else if (a == "--workloads") {
            workloads = splitList(need(i));
        } else {
            fatal("unknown argument '", a, "'");
        }
    }
    if (workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            workloads.push_back(w.name);

    auto traces = HarvestTrace::standardSet(num_traces);

    std::printf(
        "workload,arch,policy,capacitor_f,total_uj,forward_uj,"
        "overhead_uj,backup_uj,restore_uj,reclaim_uj,dead_uj,"
        "backups,violations,renames,reclaims,power_failures,"
        "nvm_writes,max_wear,completed,validated\n");

    for (const std::string &wl : workloads) {
        Program prog = assembleWorkload(wl);
        for (const std::string &arch_name : archs) {
            ArchKind arch = parseArch(arch_name);
            for (const std::string &pol_name : policies) {
                PolicySpec spec;
                spec.kind = parsePolicy(pol_name);
                for (double farads : caps) {
                    SystemConfig cfg;
                    cfg.capacitorFarads = farads;
                    Aggregate a = runAveraged(prog, arch, cfg, spec,
                                              traces);
                    std::printf(
                        "%s,%s,%s,%g,%.2f,%.2f,%.2f,%.2f,%.2f,"
                        "%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,"
                        "%.0f,%d,%d\n",
                        wl.c_str(), arch_name.c_str(),
                        pol_name.c_str(), farads,
                        a.totalEnergyNj / 1000.0,
                        a.energyOf(ECat::Forward) / 1000.0,
                        (a.energyOf(ECat::ForwardOverhead) +
                         a.energyOf(ECat::BackupOverhead) +
                         a.energyOf(ECat::RestoreOverhead)) /
                            1000.0,
                        a.energyOf(ECat::Backup) / 1000.0,
                        a.energyOf(ECat::Restore) / 1000.0,
                        a.energyOf(ECat::Reclaim) / 1000.0,
                        a.energyOf(ECat::Dead) / 1000.0, a.backups,
                        a.violations, a.renames, a.reclaims,
                        a.powerFailures, a.nvmWrites, a.maxWear,
                        a.allCompleted ? 1 : 0,
                        a.allValidated ? 1 : 0);
                    std::fflush(stdout);
                }
            }
        }
    }
    return 0;
}

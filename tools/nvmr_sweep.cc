/**
 * @file
 * Grid-sweep driver with CSV output: run every workload across a
 * grid of architectures, policies and capacitor sizes and emit one
 * CSV row per cell, ready for plotting. This is the generic
 * companion to the fixed per-figure harnesses in bench/.
 *
 *     nvmr_sweep > sweep.csv
 *     nvmr_sweep --traces 3 --archs clank,nvmr --caps 0.1,0.0075
 *     nvmr_sweep --workloads hist --stats-json sweep.json
 *     nvmr_sweep --jobs 8                      # worker count
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/log.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

PolicyKind
parseSweepPolicy(const std::string &name)
{
    PolicyKind kind = cli::parsePolicyKind(name);
    fatal_if(kind == PolicyKind::Spendthrift,
             "spendthrift needs offline training (see nvmr_train); "
             "valid here: jit, watchdog, none");
    return kind;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    int num_traces = 5;
    std::vector<std::string> archs = {"clank", "nvmr", "hoop"};
    std::vector<std::string> policies = {"jit", "watchdog"};
    // "none" is also accepted (task-based runs).
    std::vector<double> caps = {0.1};
    std::vector<std::string> workloads;
    std::string stats_json_path;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i))
            continue;
        std::string a = argv[i];
        if (a == "--traces") {
            num_traces = std::atoi(need(i));
        } else if (a == "--archs") {
            archs = splitList(need(i));
        } else if (a == "--policies") {
            policies = splitList(need(i));
        } else if (a == "--caps") {
            caps.clear();
            for (const std::string &c : splitList(need(i)))
                caps.push_back(std::strtod(c.c_str(), nullptr));
        } else if (a == "--workloads") {
            workloads = splitList(need(i));
        } else if (a == "--stats-json") {
            stats_json_path = need(i);
        } else {
            fatal("unknown argument '", a, "'");
        }
    }
    if (workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            workloads.push_back(w.name);

    // Validate the whole grid before running anything: a typo in the
    // last arch name should not surface hours into the sweep.
    std::vector<ArchKind> arch_kinds;
    for (const std::string &name : archs)
        arch_kinds.push_back(cli::parseArchKind(name));
    std::vector<PolicyKind> policy_kinds;
    for (const std::string &name : policies)
        policy_kinds.push_back(parseSweepPolicy(name));

    auto traces = HarvestTrace::standardSet(num_traces);
    ManifestWriter manifest("nvmr_sweep");

    // Flatten the grid into independent cells, assemble every program
    // up front (workers must not race the assembler caches), fan the
    // cells across the engine, then print in canonical grid order.
    struct Cell
    {
        size_t wl, ai, pi;
        double farads;
    };
    std::vector<Program> programs;
    for (const std::string &wl : workloads)
        programs.push_back(assembleWorkload(wl));
    std::vector<Cell> cells;
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        for (size_t ai = 0; ai < arch_kinds.size(); ++ai)
            for (size_t pi = 0; pi < policy_kinds.size(); ++pi)
                for (double farads : caps)
                    cells.push_back(Cell{wi, ai, pi, farads});

    par::Progress progress("sweep", cells.size());
    std::vector<std::vector<RunResult>> cell_runs =
        par::parallelMap<std::vector<RunResult>>(
            cells.size(),
            [&](size_t i) {
                const Cell &c = cells[i];
                SystemConfig cfg;
                cfg.capacitorFarads = c.farads;
                PolicySpec spec;
                spec.kind = policy_kinds[c.pi];
                return runOnTraces(programs[c.wl], arch_kinds[c.ai],
                                   cfg, spec, traces);
            },
            0, &progress);
    progress.finish();

    std::printf(
        "workload,arch,policy,capacitor_f,total_uj,forward_uj,"
        "overhead_uj,backup_uj,restore_uj,reclaim_uj,dead_uj,"
        "backups,violations,renames,reclaims,power_failures,"
        "nvm_writes,max_wear,completed,validated\n");

    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        if (i == 0) {
            SystemConfig cfg;
            cfg.capacitorFarads = c.farads;
            manifest.setConfig(cfg);
        }
        Aggregate a = aggregate(cell_runs[i]);
        if (!stats_json_path.empty())
            for (const RunResult &r : cell_runs[i])
                manifest.addRun(r);
        std::printf(
            "%s,%s,%s,%g,%.2f,%.2f,%.2f,%.2f,%.2f,"
            "%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,"
            "%.0f,%d,%d\n",
            workloads[c.wl].c_str(), archs[c.ai].c_str(),
            policies[c.pi].c_str(), c.farads,
            a.totalEnergyNj / 1000.0,
            a.energyOf(ECat::Forward) / 1000.0,
            (a.energyOf(ECat::ForwardOverhead) +
             a.energyOf(ECat::BackupOverhead) +
             a.energyOf(ECat::RestoreOverhead)) /
                1000.0,
            a.energyOf(ECat::Backup) / 1000.0,
            a.energyOf(ECat::Restore) / 1000.0,
            a.energyOf(ECat::Reclaim) / 1000.0,
            a.energyOf(ECat::Dead) / 1000.0, a.backups,
            a.violations, a.renames, a.reclaims,
            a.powerFailures, a.nvmWrites, a.maxWear,
            a.allCompleted ? 1 : 0, a.allValidated ? 1 : 0);
    }
    std::fflush(stdout);

    if (!stats_json_path.empty()) {
        manifest.addExtra("cells",
                          static_cast<double>(cells.size()));
        manifest.addExtra("traces_per_cell",
                          static_cast<double>(traces.size()));
        manifest.writeFile(stats_json_path);
    }
    return 0;
}

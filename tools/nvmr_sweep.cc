/**
 * @file
 * Grid-sweep driver with CSV output: run every workload across a
 * grid of architectures, policies and capacitor sizes and emit one
 * CSV row per cell, ready for plotting. This is the generic
 * companion to the fixed per-figure harnesses in bench/.
 *
 *     nvmr_sweep > sweep.csv
 *     nvmr_sweep --traces 3 --archs clank,nvmr --caps 0.1,0.0075
 *     nvmr_sweep --workloads hist --stats-json sweep.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/log.hh"
#include "obs/manifest.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

PolicyKind
parseSweepPolicy(const std::string &name)
{
    PolicyKind kind = cli::parsePolicyKind(name);
    fatal_if(kind == PolicyKind::Spendthrift,
             "spendthrift needs offline training (see nvmr_train); "
             "valid here: jit, watchdog, none");
    return kind;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    int num_traces = 5;
    std::vector<std::string> archs = {"clank", "nvmr", "hoop"};
    std::vector<std::string> policies = {"jit", "watchdog"};
    // "none" is also accepted (task-based runs).
    std::vector<double> caps = {0.1};
    std::vector<std::string> workloads;
    std::string stats_json_path;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--traces") {
            num_traces = std::atoi(need(i));
        } else if (a == "--archs") {
            archs = splitList(need(i));
        } else if (a == "--policies") {
            policies = splitList(need(i));
        } else if (a == "--caps") {
            caps.clear();
            for (const std::string &c : splitList(need(i)))
                caps.push_back(std::strtod(c.c_str(), nullptr));
        } else if (a == "--workloads") {
            workloads = splitList(need(i));
        } else if (a == "--stats-json") {
            stats_json_path = need(i);
        } else {
            fatal("unknown argument '", a, "'");
        }
    }
    if (workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            workloads.push_back(w.name);

    // Validate the whole grid before running anything: a typo in the
    // last arch name should not surface hours into the sweep.
    std::vector<ArchKind> arch_kinds;
    for (const std::string &name : archs)
        arch_kinds.push_back(cli::parseArchKind(name));
    std::vector<PolicyKind> policy_kinds;
    for (const std::string &name : policies)
        policy_kinds.push_back(parseSweepPolicy(name));

    auto traces = HarvestTrace::standardSet(num_traces);
    ManifestWriter manifest("nvmr_sweep");
    uint64_t cells = 0;

    std::printf(
        "workload,arch,policy,capacitor_f,total_uj,forward_uj,"
        "overhead_uj,backup_uj,restore_uj,reclaim_uj,dead_uj,"
        "backups,violations,renames,reclaims,power_failures,"
        "nvm_writes,max_wear,completed,validated\n");

    for (const std::string &wl : workloads) {
        Program prog = assembleWorkload(wl);
        for (size_t ai = 0; ai < arch_kinds.size(); ++ai) {
            ArchKind arch = arch_kinds[ai];
            for (size_t pi = 0; pi < policy_kinds.size(); ++pi) {
                PolicySpec spec;
                spec.kind = policy_kinds[pi];
                for (double farads : caps) {
                    SystemConfig cfg;
                    cfg.capacitorFarads = farads;
                    if (cells == 0)
                        manifest.setConfig(cfg);
                    std::vector<RunResult> runs =
                        runOnTraces(prog, arch, cfg, spec, traces);
                    Aggregate a = aggregate(runs);
                    ++cells;
                    if (!stats_json_path.empty())
                        for (const RunResult &r : runs)
                            manifest.addRun(r);
                    std::printf(
                        "%s,%s,%s,%g,%.2f,%.2f,%.2f,%.2f,%.2f,"
                        "%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,"
                        "%.0f,%d,%d\n",
                        wl.c_str(), archs[ai].c_str(),
                        policies[pi].c_str(), farads,
                        a.totalEnergyNj / 1000.0,
                        a.energyOf(ECat::Forward) / 1000.0,
                        (a.energyOf(ECat::ForwardOverhead) +
                         a.energyOf(ECat::BackupOverhead) +
                         a.energyOf(ECat::RestoreOverhead)) /
                            1000.0,
                        a.energyOf(ECat::Backup) / 1000.0,
                        a.energyOf(ECat::Restore) / 1000.0,
                        a.energyOf(ECat::Reclaim) / 1000.0,
                        a.energyOf(ECat::Dead) / 1000.0, a.backups,
                        a.violations, a.renames, a.reclaims,
                        a.powerFailures, a.nvmWrites, a.maxWear,
                        a.allCompleted ? 1 : 0,
                        a.allValidated ? 1 : 0);
                    std::fflush(stdout);
                }
            }
        }
    }

    if (!stats_json_path.empty()) {
        manifest.addExtra("cells", static_cast<double>(cells));
        manifest.addExtra("traces_per_cell",
                          static_cast<double>(traces.size()));
        manifest.writeFile(stats_json_path);
    }
    return 0;
}

/**
 * @file
 * Grid-sweep driver with CSV output: run every workload across a
 * grid of architectures, policies and capacitor sizes and emit one
 * CSV row per cell, ready for plotting. This is the generic
 * companion to the fixed per-figure harnesses in bench/.
 *
 *     nvmr_sweep > sweep.csv
 *     nvmr_sweep --traces 3 --archs clank,nvmr --caps 0.1,0.0075
 *     nvmr_sweep --workloads hist --stats-json sweep.json
 *     nvmr_sweep --jobs 8                      # worker count
 *     nvmr_sweep --journal sweep.jrn           # checkpoint cells
 *     nvmr_sweep --resume sweep.jrn            # skip finished cells
 *     nvmr_sweep --watchdog-cycles 50000000    # quarantine hangs
 *
 * The work-list runs through the campaign layer (docs/operations.md):
 * every finished cell is journaled, a SIGKILL'd sweep resumes with
 * byte-identical merged output, hung cells are retried then
 * quarantined into the manifest, and SIGINT/SIGTERM flush a partial
 * manifest before exiting 128+signal.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/cellio.hh"
#include "campaign/sig.hh"
#include "cli.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &s : items) {
        if (!out.empty())
            out += ',';
        out += s;
    }
    return out;
}

PolicyKind
parseSweepPolicy(const std::string &name)
{
    PolicyKind kind = cli::parsePolicyKind(name);
    fatal_if(kind == PolicyKind::Spendthrift,
             "spendthrift needs offline training (see nvmr_train); "
             "valid here: jit, watchdog, none");
    return kind;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    campaign::installSignalHandlers();
    int num_traces = 5;
    std::vector<std::string> archs = {"clank", "nvmr", "hoop"};
    std::vector<std::string> policies = {"jit", "watchdog"};
    // "none" is also accepted (task-based runs).
    std::vector<double> caps = {0.1};
    std::vector<std::string> workloads;
    std::string stats_json_path;
    campaign::Options copts;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i))
            continue;
        if (cli::handleCampaignArg(argc, argv, i, copts))
            continue;
        std::string a = argv[i];
        if (a == "--traces") {
            num_traces = std::atoi(need(i));
        } else if (a == "--archs") {
            archs = splitList(need(i));
        } else if (a == "--policies") {
            policies = splitList(need(i));
        } else if (a == "--caps") {
            caps.clear();
            for (const std::string &c : splitList(need(i)))
                caps.push_back(std::strtod(c.c_str(), nullptr));
        } else if (a == "--workloads") {
            workloads = splitList(need(i));
        } else if (a == "--stats-json") {
            stats_json_path = need(i);
        } else {
            fatal("unknown argument '", a, "'");
        }
    }
    if (workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            workloads.push_back(w.name);

    // Validate the whole grid before running anything: a typo in the
    // last arch name should not surface hours into the sweep.
    std::vector<ArchKind> arch_kinds;
    for (const std::string &name : archs)
        arch_kinds.push_back(cli::parseArchKind(name));
    std::vector<PolicyKind> policy_kinds;
    for (const std::string &name : policies)
        policy_kinds.push_back(parseSweepPolicy(name));

    auto traces = HarvestTrace::standardSet(num_traces);
    ManifestWriter manifest("nvmr_sweep");

    // Canonical config spec: everything that shapes the work-list or
    // the per-cell results gates --resume (not --jobs, not paths).
    std::string config_spec = "sweep|traces=" +
                              std::to_string(num_traces) +
                              "|archs=" + joinList(archs) +
                              "|policies=" + joinList(policies);
    config_spec += "|caps=";
    for (size_t i = 0; i < caps.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.17g", i ? "," : "",
                      caps[i]);
        config_spec += buf;
    }
    config_spec += "|workloads=" + joinList(workloads);
    cli::appendWatchdogSpec(config_spec, copts);

    campaign::Campaign cam("nvmr_sweep", config_spec, copts);

    // Flatten the grid into independent cells. Programs are assembled
    // up front -- workers must not race the assembler caches -- but
    // only for workloads that still have fresh cells to run.
    struct Cell
    {
        size_t wl, ai, pi;
        double farads;
    };
    std::vector<Cell> cells;
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        for (size_t ai = 0; ai < arch_kinds.size(); ++ai)
            for (size_t pi = 0; pi < policy_kinds.size(); ++pi)
                for (double farads : caps)
                    cells.push_back(Cell{wi, ai, pi, farads});

    std::vector<Program> programs(workloads.size());
    std::vector<char> needed(workloads.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i)
        if (!cam.cellDone("grid", i))
            needed[cells[i].wl] = 1;
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        if (needed[wi])
            programs[wi] = assembleWorkload(workloads[wi]);

    auto cell_results = cam.runStage(
        "grid", cells.size(),
        [&](const campaign::CellContext &ctx)
            -> std::optional<std::string> {
            const Cell &c = cells[ctx.index];
            SystemConfig cfg;
            cfg.capacitorFarads = c.farads;
            PolicySpec spec;
            spec.kind = policy_kinds[c.pi];
            RunOptions ropts;
            if (ctx.budgetCycles)
                ropts.maxCycles = ctx.budgetCycles;
            auto runs = runOnTraces(programs[c.wl], arch_kinds[c.ai],
                                    cfg, spec, traces, ropts);
            if (ctx.budgetCycles)
                for (const RunResult &r : runs)
                    if (!r.completed)
                        throw campaign::CellTimeout{
                            workloads[c.wl] + "/" + archs[c.ai] +
                            "/" + policies[c.pi] + " exceeded " +
                            std::to_string(ctx.budgetCycles) +
                            " cycles on trace " + r.trace};
            return campaign::encodeRunResults(runs);
        });

    std::printf(
        "workload,arch,policy,capacitor_f,total_uj,forward_uj,"
        "overhead_uj,backup_uj,restore_uj,reclaim_uj,dead_uj,"
        "backups,violations,renames,reclaims,power_failures,"
        "nvm_writes,max_wear,completed,validated\n");

    if (!cells.empty()) {
        SystemConfig cfg;
        cfg.capacitorFarads = cells[0].farads;
        manifest.setConfig(cfg);
    }
    for (size_t i = 0; i < cells.size(); ++i) {
        if (cell_results[i].status != campaign::CellStatus::Done)
            continue; // quarantined or interrupt-skipped: no row
        const Cell &c = cells[i];
        std::vector<RunResult> runs;
        fatal_if(!campaign::decodeRunResults(cell_results[i].payload,
                                             runs),
                 "corrupt journal payload for sweep cell ", i);
        Aggregate a = aggregate(runs);
        if (!stats_json_path.empty())
            for (const RunResult &r : runs)
                manifest.addRun(r);
        std::printf(
            "%s,%s,%s,%g,%.2f,%.2f,%.2f,%.2f,%.2f,"
            "%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,"
            "%.0f,%d,%d\n",
            workloads[c.wl].c_str(), archs[c.ai].c_str(),
            policies[c.pi].c_str(), c.farads,
            a.totalEnergyNj / 1000.0,
            a.energyOf(ECat::Forward) / 1000.0,
            (a.energyOf(ECat::ForwardOverhead) +
             a.energyOf(ECat::BackupOverhead) +
             a.energyOf(ECat::RestoreOverhead)) /
                1000.0,
            a.energyOf(ECat::Backup) / 1000.0,
            a.energyOf(ECat::Restore) / 1000.0,
            a.energyOf(ECat::Reclaim) / 1000.0,
            a.energyOf(ECat::Dead) / 1000.0, a.backups,
            a.violations, a.renames, a.reclaims,
            a.powerFailures, a.nvmWrites, a.maxWear,
            a.allCompleted ? 1 : 0, a.allValidated ? 1 : 0);
    }
    int rc = kExitOk;
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
        warn("error writing CSV to stdout");
        rc = kExitDegraded;
    }

    for (const auto &q : cam.quarantined())
        warn("quarantined cell ", q.index, " (",
             workloads[cells[q.index].wl], "/",
             archs[cells[q.index].ai], "/",
             policies[cells[q.index].pi], ") after ", q.attempts,
             " attempt(s): ", q.reason);

    if (!stats_json_path.empty()) {
        manifest.addExtra("cells",
                          static_cast<double>(cells.size()));
        manifest.addExtra("traces_per_cell",
                          static_cast<double>(traces.size()));
        manifest.addExtraJson(
            "quarantine",
            cam.quarantineJson([&](const campaign::QuarantineEntry &q) {
                const Cell &c = cells[q.index];
                return workloads[c.wl] + "/" + archs[c.ai] + "/" +
                       policies[c.pi];
            }));
        if (!manifest.tryWriteFile(stats_json_path))
            rc = kExitDegraded;
    }
    return cam.exitCode(rc);
}

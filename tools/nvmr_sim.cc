/**
 * @file
 * Command-line simulator driver: run any workload on any
 * architecture / policy / capacitor combination and print a full
 * report, optionally tracing intermittence events as they happen.
 *
 *     nvmr_sim --list
 *     nvmr_sim -w hist -a nvmr -p jit
 *     nvmr_sim -w qsort -a clank -p watchdog --period 4000 \
 *              --cap 7.5e-3 --seed 42 --events
 *     nvmr_sim -w dijkstra -a nvmr --reclaim --map-table 512
 *     nvmr_sim -w hist -a nvmr --stats-json run.json \
 *              --trace-json trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cli.hh"
#include "common/log.hh"
#include "obs/manifest.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

void
usage()
{
    std::puts(
        "nvmr_sim: intermittent-computing simulator driver\n"
        "\n"
        "  --list                list the available workloads\n"
        "  -w, --workload NAME   workload to run (required)\n"
        "  -a, --arch NAME       ideal | clank | clank_original | task | nvmr | hoop "
        "(default nvmr)\n"
        "  -p, --policy NAME     jit | watchdog | spendthrift "
        "(default jit)\n"
        "  --model FILE          spendthrift model (see nvmr_train)\n"
        "  --period N            watchdog period in cycles "
        "(default 8000)\n"
        "  --cap F               capacitor label in farads "
        "(default 0.1)\n"
        "  --trace KIND          rf | solar | wind (default rf)\n"
        "  --seed N              trace seed (default 7)\n"
        "  --mean MW             trace mean power in mW (default 8)\n"
        "  --map-table N         NvMR map table entries "
        "(default 4096)\n"
        "  --mt-cache N          NvMR map table cache entries "
        "(default 512)\n"
        "  --reclaim             enable map-table reclamation\n"
        "  --strict-atomic       treat a brown-out inside an atomic\n"
        "                        backup as fatal (pre-fault-model "
        "behavior)\n"
        "  --crash-at-persist N  inject a power failure at the Nth\n"
        "                        NVM persist (1-based)\n"
        "  --crash-at-cycle N    inject a power failure at cycle N\n"
        "  --ber RATE            transient NVM bit-error rate per "
        "word read\n"
        "  --no-validate         skip the continuous-run comparison\n"
        "  --events              print intermittence events live\n"
        "  --events-verbose      print every traced event, not just\n"
        "                        the intermittence narrative\n"
        "  --stats-json FILE     write the run manifest (config,\n"
        "                        results, stat histograms) as JSON\n"
        "  --trace-json FILE     write a Chrome/Perfetto trace\n"
        "  --trace-bin FILE      write the compact binary trace\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    ArchKind arch = ArchKind::Nvmr;
    PolicyKind policy_kind = PolicyKind::Jit;
    TraceKind kind = TraceKind::Rf;
    std::string model_path;
    std::string stats_json_path;
    std::string trace_json_path;
    std::string trace_bin_path;
    Cycles period = 8000;
    double cap = 0.1;
    uint64_t seed = 7;
    double mean = 8.0;
    SystemConfig cfg;
    RunOptions opts;
    bool events = false;
    bool events_verbose = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--list") {
            for (const WorkloadInfo &w : allWorkloads())
                std::printf("%s\n", w.name.c_str());
            return 0;
        } else if (a == "-w" || a == "--workload") {
            workload = need(i);
        } else if (a == "-a" || a == "--arch") {
            arch = cli::parseArchKind(need(i));
        } else if (a == "-p" || a == "--policy") {
            policy_kind = cli::parsePolicyKind(need(i));
        } else if (a == "--period") {
            period = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--cap") {
            cap = std::strtod(need(i), nullptr);
        } else if (a == "--trace") {
            kind = cli::parseTraceKind(need(i));
        } else if (a == "--seed") {
            seed = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--mean") {
            mean = std::strtod(need(i), nullptr);
        } else if (a == "--map-table") {
            cfg.mapTableEntries =
                static_cast<uint32_t>(std::strtoul(need(i), nullptr,
                                                   10));
        } else if (a == "--mt-cache") {
            cfg.mtCacheEntries =
                static_cast<uint32_t>(std::strtoul(need(i), nullptr,
                                                   10));
        } else if (a == "--reclaim") {
            cfg.reclaimEnabled = true;
        } else if (a == "--strict-atomic") {
            cfg.strictAtomic = true;
        } else if (a == "--crash-at-persist") {
            opts.faults.enabled = true;
            opts.faults.crashAtPersist =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--crash-at-cycle") {
            opts.faults.enabled = true;
            opts.faults.crashAtCycle =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--ber") {
            opts.faults.enabled = true;
            opts.faults.transientBitErrorRate =
                std::strtod(need(i), nullptr);
        } else if (a == "--model") {
            model_path = need(i);
        } else if (a == "--no-validate") {
            opts.validate = false;
        } else if (a == "--events") {
            events = true;
        } else if (a == "--events-verbose") {
            events = true;
            events_verbose = true;
        } else if (a == "--stats-json") {
            stats_json_path = need(i);
        } else if (a == "--trace-json") {
            trace_json_path = need(i);
        } else if (a == "--trace-bin") {
            trace_bin_path = need(i);
        } else if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", a, "'");
        }
    }

    if (workload.empty()) {
        usage();
        fatal("--workload is required (try --list)");
    }

    cfg.capacitorFarads = cap;

    PolicySpec spec;
    SpendthriftModel model;
    spec.kind = policy_kind;
    if (policy_kind == PolicyKind::Watchdog) {
        spec.watchdogPeriod = period;
    } else if (policy_kind == PolicyKind::Spendthrift) {
        fatal_if(model_path.empty(),
                 "spendthrift needs --model FILE (train one with "
                 "nvmr_train)");
        model = SpendthriftModel::loadFromFile(model_path);
        spec.model = &model;
    }

    Program prog = assembleWorkload(workload);
    HarvestTrace trace(kind, seed, mean);
    auto policy = makePolicy(spec);

    Simulator sim(prog, arch, cfg, *policy, trace, opts);

    // Assemble the sink stack: --events is just a TextSink over the
    // same event stream the exporters buffer.
    TextSink text(stdout, events_verbose);
    TraceBuffer buffer;
    TeeSink tee;
    bool want_buffer =
        !trace_json_path.empty() || !trace_bin_path.empty();
    TraceSink *sink = nullptr;
    if (events && want_buffer) {
        tee.addSink(&text);
        tee.addSink(&buffer);
        sink = &tee;
    } else if (events) {
        sink = &text;
    } else if (want_buffer) {
        sink = &buffer;
    }
    if (sink)
        sim.attachTrace(sink);

    RunResult result = sim.run();
    std::fputs(formatRunReport(result).c_str(), stdout);

    if (!trace_json_path.empty()) {
        std::ofstream os(trace_json_path);
        fatal_if(!os, "cannot write ", trace_json_path);
        os << buffer.toChromeJson();
    }
    if (!trace_bin_path.empty()) {
        std::ofstream os(trace_bin_path, std::ios::binary);
        fatal_if(!os, "cannot write ", trace_bin_path);
        buffer.writeBinary(os);
    }
    if (!stats_json_path.empty()) {
        ManifestWriter manifest("nvmr_sim");
        manifest.setConfig(cfg);
        manifest.addRun(result);
        manifest.addStatGroup(workload + "/" +
                                  std::string(archKindName(arch)),
                              sim.archRef().statGroup());
        if (want_buffer)
            manifest.addExtra("trace_events_recorded",
                              static_cast<double>(
                                  buffer.totalRecorded()));
        manifest.writeFile(stats_json_path);
    }

    return result.completed && (!opts.validate || result.validated)
               ? 0
               : 1;
}

/**
 * @file
 * Command-line simulator driver: run any workload on any
 * architecture / policy / capacitor combination and print a full
 * report, optionally tracing intermittence events as they happen.
 *
 *     nvmr_sim --list
 *     nvmr_sim -w hist -a nvmr -p jit
 *     nvmr_sim -w qsort -a clank -p watchdog --period 4000 \
 *              --cap 7.5e-3 --seed 42 --events
 *     nvmr_sim -w dijkstra -a nvmr --reclaim --map-table 512
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

void
usage()
{
    std::puts(
        "nvmr_sim: intermittent-computing simulator driver\n"
        "\n"
        "  --list                list the available workloads\n"
        "  -w, --workload NAME   workload to run (required)\n"
        "  -a, --arch NAME       ideal | clank | clank_original | task | nvmr | hoop "
        "(default nvmr)\n"
        "  -p, --policy NAME     jit | watchdog | spendthrift "
        "(default jit)\n"
        "  --model FILE          spendthrift model (see nvmr_train)\n"
        "  --period N            watchdog period in cycles "
        "(default 8000)\n"
        "  --cap F               capacitor label in farads "
        "(default 0.1)\n"
        "  --trace KIND          rf | solar | wind (default rf)\n"
        "  --seed N              trace seed (default 7)\n"
        "  --mean MW             trace mean power in mW (default 8)\n"
        "  --map-table N         NvMR map table entries "
        "(default 4096)\n"
        "  --mt-cache N          NvMR map table cache entries "
        "(default 512)\n"
        "  --reclaim             enable map-table reclamation\n"
        "  --strict-atomic       treat a brown-out inside an atomic\n"
        "                        backup as fatal (pre-fault-model "
        "behavior)\n"
        "  --crash-at-persist N  inject a power failure at the Nth\n"
        "                        NVM persist (1-based)\n"
        "  --crash-at-cycle N    inject a power failure at cycle N\n"
        "  --ber RATE            transient NVM bit-error rate per "
        "word read\n"
        "  --no-validate         skip the continuous-run comparison\n"
        "  --events              print intermittence events live\n");
}

/** Observer that narrates the run. */
class EventPrinter : public SimObserver
{
  public:
    void
    onBackup(BackupReason reason, Cycles at) override
    {
        std::printf("[%12llu] backup (%s)\n",
                    static_cast<unsigned long long>(at),
                    backupReasonName(reason));
    }

    void
    onPowerFailure(Cycles at) override
    {
        std::printf("[%12llu] power failure\n",
                    static_cast<unsigned long long>(at));
    }

    void
    onRestore(Cycles at) override
    {
        std::printf("[%12llu] restore\n",
                    static_cast<unsigned long long>(at));
    }

    void
    onHibernate(Cycles at) override
    {
        std::printf("[%12llu] hibernate\n",
                    static_cast<unsigned long long>(at));
    }

    void
    onWake(Cycles at) override
    {
        std::printf("[%12llu] wake\n",
                    static_cast<unsigned long long>(at));
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string arch_name = "nvmr";
    std::string policy_name = "jit";
    std::string trace_name = "rf";
    std::string model_path;
    Cycles period = 8000;
    double cap = 0.1;
    uint64_t seed = 7;
    double mean = 8.0;
    SystemConfig cfg;
    RunOptions opts;
    bool events = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--list") {
            for (const WorkloadInfo &w : allWorkloads())
                std::printf("%s\n", w.name.c_str());
            return 0;
        } else if (a == "-w" || a == "--workload") {
            workload = need(i);
        } else if (a == "-a" || a == "--arch") {
            arch_name = need(i);
        } else if (a == "-p" || a == "--policy") {
            policy_name = need(i);
        } else if (a == "--period") {
            period = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--cap") {
            cap = std::strtod(need(i), nullptr);
        } else if (a == "--trace") {
            trace_name = need(i);
        } else if (a == "--seed") {
            seed = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--mean") {
            mean = std::strtod(need(i), nullptr);
        } else if (a == "--map-table") {
            cfg.mapTableEntries =
                static_cast<uint32_t>(std::strtoul(need(i), nullptr,
                                                   10));
        } else if (a == "--mt-cache") {
            cfg.mtCacheEntries =
                static_cast<uint32_t>(std::strtoul(need(i), nullptr,
                                                   10));
        } else if (a == "--reclaim") {
            cfg.reclaimEnabled = true;
        } else if (a == "--strict-atomic") {
            cfg.strictAtomic = true;
        } else if (a == "--crash-at-persist") {
            opts.faults.enabled = true;
            opts.faults.crashAtPersist =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--crash-at-cycle") {
            opts.faults.enabled = true;
            opts.faults.crashAtCycle =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--ber") {
            opts.faults.enabled = true;
            opts.faults.transientBitErrorRate =
                std::strtod(need(i), nullptr);
        } else if (a == "--model") {
            model_path = need(i);
        } else if (a == "--no-validate") {
            opts.validate = false;
        } else if (a == "--events") {
            events = true;
        } else if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", a, "'");
        }
    }

    if (workload.empty()) {
        usage();
        fatal("--workload is required (try --list)");
    }

    cfg.capacitorFarads = cap;

    ArchKind arch;
    if (arch_name == "ideal")
        arch = ArchKind::Ideal;
    else if (arch_name == "clank")
        arch = ArchKind::Clank;
    else if (arch_name == "clank_original")
        arch = ArchKind::ClankOriginal;
    else if (arch_name == "task")
        arch = ArchKind::Task;
    else if (arch_name == "nvmr")
        arch = ArchKind::Nvmr;
    else if (arch_name == "hoop")
        arch = ArchKind::Hoop;
    else
        fatal("unknown architecture '", arch_name, "'");

    PolicySpec spec;
    SpendthriftModel model;
    if (policy_name == "jit") {
        spec.kind = PolicyKind::Jit;
    } else if (policy_name == "watchdog") {
        spec.kind = PolicyKind::Watchdog;
        spec.watchdogPeriod = period;
    } else if (policy_name == "spendthrift") {
        fatal_if(model_path.empty(),
                 "spendthrift needs --model FILE (train one with "
                 "nvmr_train)");
        model = SpendthriftModel::loadFromFile(model_path);
        spec.kind = PolicyKind::Spendthrift;
        spec.model = &model;
    } else {
        fatal("unknown policy '", policy_name, "'");
    }

    TraceKind kind;
    if (trace_name == "rf")
        kind = TraceKind::Rf;
    else if (trace_name == "solar")
        kind = TraceKind::Solar;
    else if (trace_name == "wind")
        kind = TraceKind::Wind;
    else
        fatal("unknown trace kind '", trace_name, "'");

    Program prog = assembleWorkload(workload);
    HarvestTrace trace(kind, seed, mean);
    auto policy = makePolicy(spec);

    Simulator sim(prog, arch, cfg, *policy, trace, opts);
    EventPrinter printer;
    if (events)
        sim.attachObserver(&printer);

    RunResult result = sim.run();
    std::fputs(formatRunReport(result).c_str(), stdout);
    return result.completed && (!opts.validate || result.validated)
               ? 0
               : 1;
}
